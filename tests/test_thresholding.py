"""Thresholding transformation tests (Fig. 3 structure and legality)."""

import pytest

from repro.analysis import find_launch_sites
from repro.minicuda import ast, parse, print_source
from repro.minicuda.visitor import find_all
from repro.transforms import ThresholdingPass
from repro.transforms.thresholding import THRESHOLD_MACRO


def run_pass(source, threshold=128):
    program = parse(source)
    meta = ThresholdingPass(threshold).run(program)
    return program, meta


class TestStructure:
    def test_serial_device_function_created(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source)
        assert meta.serial_functions == ["child_serial"]
        serial = program.function("child_serial")
        assert serial.is_device and not serial.is_kernel

    def test_serial_has_gdim_bdim_params(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        serial = program.function("child_serial")
        names = serial.param_names()
        assert names[-2:] == ["_gDim", "_bDim"]
        assert serial.params[-1].type.name == "dim3"

    def test_serial_nested_loops(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        serial = program.function("child_serial")
        loops = find_all(serial, ast.For)
        assert len(loops) == 2  # block loop around thread loop

    def test_serial_body_has_no_reserved_vars(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        serial = program.function("child_serial")
        names = {n.name for n in find_all(serial, ast.Ident)}
        assert "blockIdx" not in names
        assert "threadIdx" not in names
        assert "gridDim" not in names
        assert "blockDim" not in names

    def test_launch_site_guarded_by_threshold(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source, threshold=64)
        parent = program.function("parent")
        guards = [i for i in find_all(parent, ast.If)
                  if isinstance(i.cond, ast.Binary) and i.cond.op == ">="
                  and isinstance(i.cond.rhs, ast.Ident)
                  and i.cond.rhs.name == THRESHOLD_MACRO]
        assert len(guards) == 1
        guard = guards[0]
        assert find_all(guard.then, ast.Launch)
        serial_calls = [c for c in find_all(guard.orelse, ast.Call)
                        if isinstance(c.func, ast.Ident)
                        and c.func.name == "child_serial"]
        assert len(serial_calls) == 1

    def test_threshold_macro_recorded(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, threshold=64)
        assert meta.macros[THRESHOLD_MACRO] == 64
        assert meta.thresholded_sites == 1

    def test_count_expression_moved_not_duplicated(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        # "degree" must appear once in the _threads decl and once inside the
        # hoisted arg, but not inside the grid expression anymore.
        assert "int _threads = degree;" in text
        assert "(_threads + 255) / 256" in text

    def test_original_child_kernel_untouched(self, bfs_like_source):
        from repro.minicuda.printer import Printer
        before = Printer().function(parse(bfs_like_source).function("child"))
        program, _ = run_pass(bfs_like_source)
        after = Printer().function(program.function("child"))
        assert before == after

    def test_output_reparses(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        assert print_source(parse(text)) == text


class TestLegality:
    def test_barrier_child_skipped(self, barrier_child_source):
        program, meta = run_pass(barrier_child_source)
        assert meta.thresholded_sites == 0
        assert meta.skipped_sites
        reason = meta.skipped_sites[0][2]
        assert "barrier" in reason or "shared" in reason
        # Launch left untouched.
        assert len(find_all(program.function("parent"), ast.Launch)) == 1

    def test_shared_memory_only_child_skipped(self):
        source = """
        __global__ void c(float *p, int n) {
            __shared__ float buf[32];
            buf[threadIdx.x] = p[threadIdx.x];
            p[threadIdx.x] = buf[threadIdx.x] * 2.0f;
        }
        __global__ void parent(float *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]); }
        }
        """
        _, meta = run_pass(source)
        assert meta.skipped_sites[0][2] == "shared memory"

    def test_multidimensional_child_gets_loops_per_dimension(self):
        # Sec. III-B: "if the child kernel is multi-dimensional, loops would
        # be inserted for each dimension".
        source = """
        __global__ void c(int *p, int n) {
            p[threadIdx.y * blockDim.x + threadIdx.x] = n;
        }
        __global__ void parent(int *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]); }
        }
        """
        program, meta = run_pass(source)
        assert meta.thresholded_sites == 1
        serial = program.function("c_serial")
        loops = find_all(serial, ast.For)
        assert len(loops) == 6  # 3 grid dims x 3 block dims

    def test_guard_return_becomes_continue(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t >= n) { return; }
            p[t] = t;
        }
        __global__ void parent(int *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]); }
        }
        """
        program, meta = run_pass(source)
        assert meta.thresholded_sites == 1
        serial = program.function("c_serial")
        assert find_all(serial, ast.Continue)
        assert not find_all(serial, ast.Return)

    def test_return_inside_loop_skipped(self):
        source = """
        __global__ void c(int *p, int n) {
            for (int i = 0; i < n; ++i) {
                if (p[i] < 0) { return; }
                p[i] = i;
            }
        }
        __global__ void parent(int *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]); }
        }
        """
        _, meta = run_pass(source)
        assert meta.skipped_sites[0][2] == "return inside loop"


class TestFallback:
    def test_unanalyzable_grid_uses_product(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { p[t] = t; }
        }
        __global__ void parent(int *p, int *gridsizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<gridsizes[t], 128>>>(p, n); }
        }
        """
        program, meta = run_pass(source)
        assert meta.thresholded_sites == 1
        text = print_source(program)
        assert "_tgDim.x * _tbDim.x" in text

    def test_two_sites_same_child_share_serial_clone(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { p[t] = t; }
        }
        __global__ void parent(int *p, int *a, int *b, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) {
                c<<<(a[t] + 31) / 32, 32>>>(p, a[t]);
                c<<<(b[t] + 31) / 32, 32>>>(p, b[t]);
            }
        }
        """
        program, meta = run_pass(source)
        assert meta.thresholded_sites == 2
        assert meta.serial_functions == ["c_serial"]
