"""Property-based tests: print → parse is the identity on ASTs.

Random expression/statement ASTs are generated structurally (not as random
text), printed, re-parsed, and compared with the structural-equality helper
used by the Fig. 4 analysis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import expr_equal
from repro.minicuda import ast, parse, parse_expr, print_expr, print_source

_NAMES = ("a", "b", "c", "n", "x", "deg", "p")


def _leaf():
    return st.one_of(
        st.integers(min_value=0, max_value=1 << 20).map(ast.IntLit),
        st.sampled_from(_NAMES).map(ast.Ident),
        st.booleans().map(ast.BoolLit),
    )


def _exprs():
    binary_ops = st.sampled_from(
        ["+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=",
         "&&", "||", "&", "|", "^", "<<", ">>"])
    unary_ops = st.sampled_from(["-", "!", "~"])

    def extend(children):
        return st.one_of(
            st.tuples(binary_ops, children, children).map(
                lambda t: ast.Binary(t[0], t[1], t[2])),
            st.tuples(unary_ops, children).map(
                lambda t: ast.Unary(t[0], t[1])),
            st.tuples(children, children, children).map(
                lambda t: ast.Ternary(t[0], t[1], t[2])),
            st.tuples(st.sampled_from(_NAMES), children).map(
                lambda t: ast.Index(ast.Ident(t[0]), t[1])),
            st.tuples(st.sampled_from(("min", "max")), children,
                      children).map(
                lambda t: ast.Call(ast.Ident(t[0]), [t[1], t[2]])),
            st.tuples(st.sampled_from(("float", "int")), children).map(
                lambda t: ast.Cast(ast.Type(t[0]), t[1])),
        )

    return st.recursive(_leaf(), extend, max_leaves=25)


@given(_exprs())
@settings(max_examples=300, deadline=None)
def test_expr_print_parse_roundtrip(expr):
    printed = print_expr(expr)
    reparsed = parse_expr(printed)
    assert expr_equal(expr, reparsed), printed


@given(_exprs())
@settings(max_examples=100, deadline=None)
def test_expr_print_is_stable(expr):
    printed = print_expr(expr)
    assert print_expr(parse_expr(printed)) == printed


@given(_exprs(), _exprs())
@settings(max_examples=150, deadline=None)
def test_program_roundtrip_with_generated_body(cond, value):
    program = ast.Program([ast.FunctionDef(
        ("__global__",), ast.VOID.clone(), "k",
        [ast.Param(ast.INT.pointer_to(), "p"), ast.Param(ast.INT.clone(), "n")],
        ast.Compound([
            ast.If(cond, ast.Compound([
                ast.ExprStmt(ast.Assign("=", ast.Index(ast.Ident("p"),
                                                       ast.IntLit(0)),
                                        value))]), None),
        ]))])
    once = print_source(program)
    assert print_source(parse(once)) == once


@given(_exprs())
@settings(max_examples=100, deadline=None)
def test_expr_equal_is_reflexive(expr):
    assert expr_equal(expr, expr)
    assert expr_equal(expr.clone(), expr)
