"""Property-based timing-simulation tests: invariants over random traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (DEVICE, HOST, BlockCost, DeviceConfig, LaunchRecord,
                       Trace, simulate)


@st.composite
def random_traces(draw):
    """A random host-launched forest of grids with dynamic children."""
    trace = Trace()
    num_parents = draw(st.integers(1, 4))
    for _ in range(num_parents):
        parent = trace.new_grid("p", 0, draw(st.sampled_from([32, 64, 256])))
        num_blocks = draw(st.integers(1, 6))
        parent.grid_dim = num_blocks
        for _ in range(num_blocks):
            cycles = draw(st.integers(1, 5000))
            parent.blocks.append(BlockCost(cycles, cycles))
        parent.launch = LaunchRecord(kind=HOST, grid=parent)
        trace.host_events.append(("launch", parent))
        num_children = draw(st.integers(0, 5))
        for _ in range(num_children):
            child = trace.new_grid("c", 1, 32)
            cycles = draw(st.integers(1, 1000))
            child.blocks.append(BlockCost(cycles, cycles))
            record = LaunchRecord(
                kind=DEVICE, grid=child, parent_grid=parent,
                parent_block=draw(st.integers(0, num_blocks - 1)),
                issue_offset=draw(st.integers(0, 2000)))
            child.launch = record
            parent.children.append(record)
        if draw(st.booleans()):
            trace.host_events.append(("sync",))
    trace.host_events.append(("sync",))
    return trace


CONFIG = DeviceConfig()


@given(random_traces())
@settings(max_examples=80, deadline=None)
def test_every_grid_finishes_after_it_starts(trace):
    result = simulate(trace, CONFIG)
    for grid in trace.grids:
        timing = result.grid_timings[grid.gid]
        assert timing.finish >= timing.first_start >= timing.ready >= 0
        assert timing.blocks_done == len(grid.blocks)


@given(random_traces())
@settings(max_examples=80, deadline=None)
def test_total_time_bounds(trace):
    result = simulate(trace, CONFIG)
    finishes = [result.grid_timings[g.gid].finish for g in trace.grids]
    assert result.total_time >= max(finishes)
    # Lower bound: the host must at least pay per-launch latency plus the
    # slowest single block run alone.
    host_launches = trace.total_launches(HOST)
    assert result.total_time >= host_launches * CONFIG.host_launch_latency


@given(random_traces())
@settings(max_examples=60, deadline=None)
def test_children_respect_launch_latency(trace):
    result = simulate(trace, CONFIG)
    minimum_delay = CONFIG.launch_service_interval \
        + CONFIG.device_launch_latency
    for grid in trace.grids:
        if grid.launch is not None and grid.launch.kind == DEVICE:
            parent_timing = result.grid_timings[grid.launch.parent_grid.gid]
            child_timing = result.grid_timings[grid.gid]
            assert child_timing.ready \
                >= parent_timing.first_start + minimum_delay


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_simulation_is_deterministic(trace):
    first = simulate(trace, CONFIG)
    second = simulate(trace, CONFIG)
    assert first.total_time == second.total_time
    assert first.launch_queue_wait == second.launch_queue_wait


@given(random_traces(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_more_sms_never_much_slower(trace, extra):
    """More SMs can be *marginally* slower: block placement is greedy
    FIFO with a free-thread tie-break, so extra SMs can co-locate the
    slowest blocks on one shared pipeline (Graham's scheduling anomaly —
    list scheduling has no monotonicity guarantee). The anomaly is
    bounded by the greedy factor; it can never double the makespan."""
    small = simulate(trace, DeviceConfig(num_sms=2))
    large = simulate(trace, DeviceConfig(num_sms=2 + extra))
    assert large.total_time <= 2 * small.total_time


def test_more_sms_anomaly_regression():
    """The minimal hypothesis-found anomaly: one grid of four blocks
    costing [2, 1, 1, 2]. Two SMs pair them [2,1]/[1,2]; three SMs place
    the fourth block back on SM0, serializing [2,2] on one pipeline and
    finishing one cycle later. The anomaly must stay bounded."""
    def make_trace():
        trace = Trace()
        parent = trace.new_grid("p", 0, 32)
        parent.grid_dim = 4
        for cycles in (2, 1, 1, 2):
            parent.blocks.append(BlockCost(cycles, cycles))
        parent.launch = LaunchRecord(kind=HOST, grid=parent)
        trace.host_events.append(("launch", parent))
        trace.host_events.append(("sync",))
        return trace

    small = simulate(make_trace(), DeviceConfig(num_sms=2))
    large = simulate(make_trace(), DeviceConfig(num_sms=3))
    assert large.total_time <= 2 * small.total_time
    # The slowdown exists (this documents the anomaly) but is tiny.
    assert 0 <= large.total_time - small.total_time <= 1