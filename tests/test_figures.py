"""Integration tests: every figure function runs end to end at tiny scale
and produces the paper's qualitative relationships."""

import pytest

from repro.harness import (SpeedupFigure, figure9, figure10, figure11,
                           figure12, fixed_threshold_study, table1)

SCALE = 0.1
TINY_PAIRS = (("BFS", "KRON"), ("SP", "RAND-3"))


@pytest.fixture(scope="module")
def fig9():
    return figure9(scale=SCALE, pairs=TINY_PAIRS)


class TestTable1:
    def test_covers_all_pairs(self):
        result = table1(scale=SCALE)
        assert len(result.rows) == 15  # 14 pairs + road graph
        text = result.format()
        assert "KRON" in text and "RAND-3" in text


class TestFigure9:
    def test_all_series_present(self, fig9):
        for pair in TINY_PAIRS:
            row = fig9.speedups[pair]
            assert set(row) == {
                "No CDP", "CDP", "KLAP (CDP+A)", "CDP+T", "CDP+C",
                "CDP+T+C", "CDP+T+A", "CDP+C+A", "CDP+T+C+A"}

    def test_cdp_is_unity(self, fig9):
        for pair in TINY_PAIRS:
            assert fig9.speedups[pair]["CDP"] == 1.0

    def test_aggregation_beats_cdp(self, fig9):
        for pair in TINY_PAIRS:
            assert fig9.speedups[pair]["KLAP (CDP+A)"] > 1.5

    def test_full_framework_at_least_klap(self, fig9):
        gm = fig9.geomeans()
        assert gm["CDP+T+C+A"] >= gm["KLAP (CDP+A)"] * 0.95

    def test_tuned_combo_never_much_worse_than_subset(self, fig9):
        # The tuner can always fall back to threshold=1 etc., so the full
        # combination cannot lose badly to aggregation alone.
        for pair in TINY_PAIRS:
            row = fig9.speedups[pair]
            assert row["CDP+T+C+A"] >= row["CDP+C+A"] * 0.9

    def test_format_contains_geomean(self, fig9):
        assert "Geomean" in fig9.format()

    def test_best_params_recorded(self, fig9):
        key = ("BFS", "KRON", "CDP+T+C+A")
        assert key in fig9.best_params
        assert fig9.best_params[key].threshold is not None


class TestGeomeanLabels:
    def test_union_across_rows(self):
        """Regression: labels only read from the first pair's row, so a
        label present elsewhere vanished from the geomean table."""
        fig = SpeedupFigure(
            "t", [("A", "x"), ("B", "y")],
            {("A", "x"): {"CDP": 1.0},
             ("B", "y"): {"CDP": 1.0, "CDP+T": 2.0}})
        gm = fig.geomeans()
        assert gm["CDP+T"] == pytest.approx(2.0)
        assert gm["CDP"] == pytest.approx(1.0)
        assert "CDP+T" in fig.format()


class TestFigure10:
    def test_breakdown_structure(self):
        fig = figure10(scale=SCALE, pairs=(("BFS", "KRON"),))
        row = fig.rows[("BFS", "KRON")]
        klap = row["KLAP (CDP+A)"]
        assert abs(sum(klap.values()) - 1.0) < 1e-9
        assert klap["disagg"] > 0
        # thresholding increases parent share and decreases child share
        t_a = row["CDP+T+A"]
        assert t_a["parent"] > klap["parent"]
        assert t_a["child"] < klap["child"]
        assert "Figure 10" in fig.format()


class TestFigure11:
    def test_sweep_structure(self):
        fig = figure11("BFS", "KRON", scale=SCALE)
        assert set(fig.series) == {"grid", "multiblock", "block", "warp",
                                   "none"}
        assert fig.thresholds[0] is None
        no_agg = fig.series["none"]
        # CDP+C alone is approximately CDP (paper: 1.01x geomean).
        assert no_agg[None] == pytest.approx(1.0, rel=0.1)
        # thresholding without aggregation must show a rise
        assert max(v for t, v in no_agg.items() if t) > 1.5
        assert "Figure 11" in fig.format()


class TestFigure12:
    def test_road_graph_low_parallelism(self):
        fig = figure12(scale=SCALE)
        gm = fig.geomeans()
        # On road graphs No CDP wins big over CDP (Sec. VIII-D)...
        assert gm["No CDP"] > 2.0
        # ...and the optimizations recover much but CDP+T cannot beat
        # No CDP because the launch's mere presence costs (code tax).
        assert gm["CDP+T"] <= gm["No CDP"] * 1.05


class TestFixedThreshold:
    def test_tuned_at_least_fixed(self):
        result = fixed_threshold_study(scale=SCALE, pairs=TINY_PAIRS)
        assert result.tuned_geomean >= result.fixed_geomean * 0.99
        assert "VIII-C" in result.format()
