"""SSSP — worklist-based single-source shortest paths (Lonestar-style).

Like BFS but with weighted relaxations: a child thread relaxes one outgoing
edge with atomicMin and appends improved vertices to the next worklist,
deduplicated per iteration with an iteration-stamp array.
"""

import numpy as np

from ..datasets import kron_graph, road_graph, web_graph
from ..runtime.host import blocks
from .common import INF, Benchmark, scaled

_CHILD = """
__global__ void sssp_child(int *col, int *wts, int *dist, int *stamp,
                           int *out_f, int *out_n, int du, int start,
                           int degree, int iter) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        int nd = du + wts[start + tid];
        if (atomicMin(&dist[v], nd) > nd) {
            if (atomicExch(&stamp[v], iter) != iter) {
                int idx = atomicAdd(out_n, 1);
                out_f[idx] = v;
            }
        }
    }
}
"""

_CDP_PARENT = """
__global__ void sssp_kernel(int *row, int *col, int *wts, int *dist,
                            int *stamp, int *in_f, int in_n, int *out_f,
                            int *out_n, int iter) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < in_n) {
        int u = in_f[tid];
        int start = row[u];
        int degree = row[u + 1] - start;
        int du = dist[u];
        if (degree > 0) {
            sssp_child<<<(degree + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
                col, wts, dist, stamp, out_f, out_n, du, start, degree, iter);
        }
    }
}
"""

_NOCDP = """
__global__ void sssp_kernel(int *row, int *col, int *wts, int *dist,
                            int *stamp, int *in_f, int in_n, int *out_f,
                            int *out_n, int iter) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < in_n) {
        int u = in_f[tid];
        int start = row[u];
        int end = row[u + 1];
        int du = dist[u];
        for (int i = start; i < end; ++i) {
            int v = col[i];
            int nd = du + wts[i];
            if (atomicMin(&dist[v], nd) > nd) {
                if (atomicExch(&stamp[v], iter) != iter) {
                    int idx = atomicAdd(out_n, 1);
                    out_f[idx] = v;
                }
            }
        }
    }
}
"""


class SSSPBenchmark(Benchmark):
    name = "SSSP"
    dataset_names = ("KRON", "CNR", "ROAD-NY")
    child_block = 32

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "KRON":
            return kron_graph(scale=max(7, 11 + int(np.log2(max(scale, 1e-6)))))
        if dataset_name == "CNR":
            return web_graph(n=scaled(3000, scale, 200))
        if dataset_name == "ROAD-NY":
            side = scaled(40, scale ** 0.5, 12)
            return road_graph(width=side, height=side)
        raise KeyError(dataset_name)

    def drive(self, device, graph):
        n = graph.num_vertices
        row = device.upload(graph.row)
        col = device.upload(graph.col)
        wts = device.upload(graph.weights)
        dist = device.alloc("int", n, fill=INF)
        stamp = device.alloc("int", n, fill=-1)
        frontier_a = device.alloc("int", n)
        frontier_b = device.alloc("int", n)
        out_n = device.alloc("int", 1)

        src = int(np.argmax(graph.degrees()))
        dist.array[src] = 0
        frontier_a.array[0] = src
        in_n, iteration = 1, 1
        in_f, out_f = frontier_a, frontier_b
        while in_n > 0:
            out_n.array[0] = 0
            device.launch("sssp_kernel", blocks(in_n, 256), 256,
                          row, col, wts, dist, stamp, in_f, in_n, out_f,
                          out_n, iteration)
            device.sync()
            in_n = int(out_n[0])
            in_f, out_f = out_f, in_f
            iteration += 1
        return {"dist": dist.to_numpy()}
