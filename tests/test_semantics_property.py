"""Property-based end-to-end test: the transformations never change program
results, for random workloads and random optimization configurations.

This is the framework's central correctness contract (Sec. VI: "any
combination could be applied in any order while generating correct code").
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import from_edges
from repro.engine import Module
from repro.harness import outputs_match
from repro.runtime import Device, blocks
from repro.transforms import OptConfig, transform

SRC = """
__global__ void child(int *col, int *dist, int *out_n, int level, int start,
                      int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        if (atomicCAS(&dist[v], -1, level) == -1) {
            atomicAdd(out_n, 1);
        }
    }
}

__global__ void parent(int *row, int *col, int *dist, int *out_n, int n,
                       int level) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int start = row[tid];
        int degree = row[tid + 1] - start;
        if (degree > 0) {
            child<<<(degree + 31) / 32, 32>>>(col, dist, out_n, level,
                                              start, degree);
        }
    }
}
"""


def run_config(graph, config):
    if config is None:
        module = Module(SRC)
    else:
        result = transform(SRC, config)
        module = Module(result.program, result.meta)
    dev = Device(module)
    row = dev.upload(graph.row)
    col = dev.upload(graph.col)
    dist = dev.alloc("int", graph.num_vertices, fill=-1)
    out_n = dev.alloc("int", 1)
    dist.array[0] = 0
    dev.launch("parent", blocks(graph.num_vertices, 64), 64,
               row, col, dist, out_n, graph.num_vertices, 1)
    dev.sync()
    return {"dist": dist.to_numpy(), "count": out_n.to_numpy()}


configs = st.builds(
    OptConfig,
    threshold=st.one_of(st.none(), st.integers(1, 512)),
    coarsen_factor=st.one_of(st.none(), st.integers(1, 64)),
    aggregate=st.one_of(st.none(),
                        st.sampled_from(["warp", "block", "multiblock",
                                         "grid"])),
    group_blocks=st.integers(1, 16),
)

graphs = st.builds(
    lambda n, density, seed: _graph(n, density, seed),
    n=st.integers(4, 80),
    density=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)


def _graph(n, density, seed):
    rng = np.random.default_rng(seed)
    m = n * density
    return from_edges(n, rng.integers(0, n, m), rng.integers(0, n, m),
                      seed=seed)


@given(graph=graphs, config=configs)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_transformed_code_preserves_results(graph, config):
    reference = run_config(graph, None)
    transformed = run_config(graph, config)
    assert outputs_match(reference, transformed)


@given(config=configs)
@settings(max_examples=40, deadline=None)
def test_transformed_source_reparses(config):
    from repro.minicuda import parse, print_source
    result = transform(SRC, config)
    text = result.source
    assert print_source(parse(text)) == text


@given(graph=graphs,
       order=st.permutations(["T", "C", "A"]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pass_order_independence(graph, order):
    """Sec. VI: the passes are independent; any application order is correct.
    (The paper picks T->C->A for optimization quality, not correctness.)"""
    config = OptConfig(threshold=32, coarsen_factor=4, aggregate="block")
    reference = run_config(graph, None)
    result = transform(SRC, config, order=tuple(order))
    module = Module(result.program, result.meta)
    dev = Device(module)
    row = dev.upload(graph.row)
    col = dev.upload(graph.col)
    dist = dev.alloc("int", graph.num_vertices, fill=-1)
    out_n = dev.alloc("int", 1)
    dist.array[0] = 0
    dev.launch("parent", blocks(graph.num_vertices, 64), 64,
               row, col, dist, out_n, graph.num_vertices, 1)
    dev.sync()
    outputs = {"dist": dist.to_numpy(), "count": out_n.to_numpy()}
    assert outputs_match(reference, outputs)
