"""Printer unit tests: rendering and parenthesization."""

from repro.minicuda import parse, parse_expr, parse_stmt, print_expr, \
    print_source, print_stmt


def roundtrip_expr(text):
    return print_expr(parse_expr(text))


class TestExpressionPrinting:
    def test_minimal_parens_for_precedence(self):
        assert roundtrip_expr("(a + b) * c") == "(a + b) * c"
        assert roundtrip_expr("a + b * c") == "a + b * c"

    def test_redundant_parens_dropped(self):
        assert roundtrip_expr("((a)) + ((b))") == "a + b"

    def test_right_operand_parens_for_same_precedence(self):
        # a - (b - c) must keep its parens; (a - b) - c must not.
        assert roundtrip_expr("a - (b - c)") == "a - (b - c)"
        assert roundtrip_expr("a - b - c") == "a - b - c"

    def test_unary_spacing_avoids_decrement(self):
        # "-(-x)" must not print as "--x".
        assert "--" not in roundtrip_expr("-(-x)")

    def test_launch_format(self):
        text = print_stmt(parse_stmt("k<<<g, b>>>(x, y);"))
        assert text == "k<<<g, b>>>(x, y);"

    def test_cast(self):
        assert roundtrip_expr("(float)n / b") == "(float)n / b"

    def test_ternary(self):
        assert roundtrip_expr("a ? b : c") == "a ? b : c"

    def test_index_member_chain(self):
        assert roundtrip_expr("p[i].x") == "p[i].x"

    def test_address_of_call(self):
        assert roundtrip_expr("atomicAdd(&c[0], 1)") == "atomicAdd(&c[0], 1)"

    def test_assignment(self):
        assert roundtrip_expr("x += y * 2") == "x += y * 2"


class TestStatementPrinting:
    def test_if_else_layout(self):
        text = print_stmt(parse_stmt("if (a) { x = 1; } else { y = 2; }"))
        assert "if (a)" in text
        assert "else" in text

    def test_for_header(self):
        text = print_stmt(parse_stmt("for (int i = 0; i < n; i += 1) {}"))
        assert text.startswith("for (int i = 0; i < n; i += 1)")

    def test_declaration_with_pointers(self):
        text = print_stmt(parse_stmt("int *p, q;"))
        assert text == "int *p, q;"

    def test_shared_array(self):
        text = print_stmt(parse_stmt("__shared__ float buf[256];"))
        assert text == "__shared__ float buf[256];"

    def test_do_while(self):
        text = print_stmt(parse_stmt("do { x = 1; } while (false);"))
        assert text.rstrip().endswith("while (false);")


class TestProgramPrinting:
    def test_stable_fixpoint(self, bfs_like_source):
        once = print_source(parse(bfs_like_source))
        twice = print_source(parse(once))
        assert once == twice

    def test_barrier_source_fixpoint(self, barrier_child_source):
        once = print_source(parse(barrier_child_source))
        assert print_source(parse(once)) == once

    def test_qualifiers_printed(self):
        text = print_source(parse("__device__ int f(int x) { return x; }"))
        assert text.startswith("__device__ int f(int x)")

    def test_global_decl_printed(self):
        text = print_source(parse("__device__ int counter = 0;"))
        assert "__device__ int counter = 0;" in text
