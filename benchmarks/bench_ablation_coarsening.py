"""Ablation — coarsening-factor sensitivity (Sec. VIII-C: "performance is
not very sensitive to the coarsening factor provided it is sufficiently
large")."""

from repro.benchmarks import get_benchmark
from repro.harness import TuningParams, geomean, run_variant

from conftest import save

FACTORS = (1, 2, 4, 8, 16, 32, 64)


def _sweep(scale):
    bench = get_benchmark("MSTF")
    data = bench.build_dataset("KRON", scale)
    cdp = run_variant(bench, data, "CDP")
    rows = []
    for factor in FACTORS:
        params = TuningParams(threshold=32, coarsen_factor=factor,
                              granularity="block")
        result = run_variant(bench, data, "CDP+T+C+A", params)
        rows.append((factor, result.total_time,
                     cdp.total_time / result.total_time))
    return rows


def test_coarsening_factor_insensitivity(benchmark, repro_scale, out_dir):
    rows = benchmark.pedantic(_sweep, args=(repro_scale,),
                              rounds=1, iterations=1)
    lines = ["Ablation: coarsening factor (MSTF/KRON, T=32, A=block)",
             "%-8s %12s %9s" % ("factor", "sim. cycles", "speedup")]
    for factor, time, speedup in rows:
        lines.append("%-8d %12d %8.2fx" % (factor, time, speedup))
    text = "\n".join(lines)
    save(out_dir, "ablation_coarsening.txt", text)
    print()
    print(text)

    # Factors >= 8 should sit within a narrow band of each other.
    large = [speedup for factor, _, speedup in rows if factor >= 8]
    assert max(large) / min(large) < 1.5


def test_transform_compile_speed(benchmark):
    """Compiler throughput: full T+C+A pipeline on the MSTF source."""
    from repro.transforms import OptConfig, transform
    bench = get_benchmark("MSTF")
    source = bench.cdp_source()
    config = OptConfig(threshold=32, coarsen_factor=8,
                       aggregate="multiblock")
    result = benchmark(transform, source, config)
    assert result.meta.agg_specs
