"""Edge-case integration tests: odd block sizes under warp aggregation,
multiple launch sites per parent, device-side cudaMalloc, printf, and the
SP-style ceil() launch pattern end to end."""

import numpy as np
import pytest

from repro.engine import Dim3, Module, alloc_for_type, run_grid
from repro.harness import outputs_match
from repro.minicuda.ast import Type
from repro.runtime import Device, blocks
from repro.sim import Trace
from repro.transforms import OptConfig, transform

SCATTER_SRC = """
__global__ void child(int *out, int base, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        atomicAdd(&out[0], base + tid);
    }
}

__global__ void parent(int *sizes, int *out, int n) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < n) {
        int c = sizes[t];
        if (c > 0) {
            child<<<(c + 31) / 32, 32>>>(out, t, c);
        }
    }
}
"""


def run_scatter(config, n=100, parent_block=48, seed=4):
    """parent_block=48 is deliberately not a multiple of 32: warp
    granularity must still group and count correctly."""
    if config is None:
        module = Module(SCATTER_SRC)
    else:
        result = transform(SCATTER_SRC, config)
        module = Module(result.program, result.meta)
    dev = Device(module)
    rng = np.random.default_rng(seed)
    sizes = dev.upload(rng.integers(0, 40, n))
    out = dev.alloc("int", 1)
    dev.launch("parent", blocks(n, parent_block), parent_block,
               sizes, out, n)
    dev.sync()
    dev.finish()
    return {"out": out.to_numpy()}


class TestWarpAggregationOddBlocks:
    @pytest.mark.parametrize("parent_block", [16, 33, 48, 65, 96])
    def test_partial_warps_complete(self, parent_block):
        reference = run_scatter(None, parent_block=parent_block)
        outputs = run_scatter(OptConfig(aggregate="warp"),
                              parent_block=parent_block)
        assert outputs_match(reference, outputs)

    @pytest.mark.parametrize("parent_block", [48, 96])
    def test_warp_agg_threshold(self, parent_block):
        reference = run_scatter(None, parent_block=parent_block)
        outputs = run_scatter(
            OptConfig(aggregate="warp", agg_threshold=4),
            parent_block=parent_block)
        assert outputs_match(reference, outputs)


TWO_SITES_SRC = """
__global__ void inc(int *out, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        atomicAdd(&out[0], 1);
    }
}

__global__ void dbl(int *out, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        atomicAdd(&out[1], 2);
    }
}

__global__ void parent(int *a, int *b, int *out, int n) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < n) {
        if (a[t] > 0) {
            inc<<<(a[t] + 31) / 32, 32>>>(out, a[t]);
        }
        if (b[t] > 0) {
            dbl<<<(b[t] + 63) / 64, 64>>>(out, b[t]);
        }
    }
}
"""


class TestMultipleLaunchSites:
    def _run(self, config):
        if config is None:
            module = Module(TWO_SITES_SRC)
        else:
            result = transform(TWO_SITES_SRC, config)
            module = Module(result.program, result.meta)
        dev = Device(module)
        rng = np.random.default_rng(7)
        n = 80
        a = dev.upload(rng.integers(0, 30, n))
        b = dev.upload(rng.integers(0, 60, n))
        out = dev.alloc("int", 2)
        dev.launch("parent", blocks(n, 64), 64, a, b, out, n)
        dev.sync()
        return {"out": out.to_numpy()}

    def test_two_sites_aggregated_independently(self):
        reference = self._run(None)
        for granularity in ("block", "multiblock", "grid"):
            outputs = self._run(OptConfig(aggregate=granularity))
            assert outputs_match(reference, outputs), granularity

    def test_two_sites_full_pipeline(self):
        reference = self._run(None)
        config = OptConfig(threshold=16, coarsen_factor=4,
                           aggregate="multiblock", group_blocks=2)
        assert outputs_match(reference, self._run(config))

    def test_buffer_sets_distinct(self):
        result = transform(TWO_SITES_SRC, OptConfig(aggregate="block"))
        specs = result.meta.agg_specs
        assert len(specs) == 2
        assert specs[0].buffer_params != specs[1].buffer_params
        assert {s.original_child for s in specs} == {"inc", "dbl"}


class TestDeviceMalloc:
    def test_cuda_malloc_allocates_usable_memory(self):
        src = """
        __global__ void k(int *out, int n) {
            int *scratch;
            cudaMalloc(&scratch, n * sizeof(int));
            for (int i = 0; i < n; ++i) {
                scratch[i] = i * i;
            }
            int s = 0;
            for (int i = 0; i < n; ++i) {
                s += scratch[i];
            }
            out[0] = s;
        }
        """
        out = alloc_for_type(Type("int"), 1)
        module = Module(src)
        run_grid(module, Trace(), "k", Dim3(1), Dim3(1), (out, 10))
        assert out[0] == sum(i * i for i in range(10))


class TestPrintf:
    def test_printf_collected_in_trace(self):
        src = """
        __global__ void k(int *p) {
            printf("thread %d", threadIdx.x);
            p[0] = 1;
        }
        """
        module = Module(src)
        trace = Trace()
        run_grid(module, trace, "k", Dim3(1), Dim3(2),
                 (alloc_for_type(Type("int"), 1),))
        assert trace.printf_lines == ["thread 0", "thread 1"]


class TestCeilPatternEndToEnd:
    """SP launches with ceil((float)N/b) — pattern (d) of Fig. 4 — and the
    thresholding transform must extract and guard on N."""

    SRC = """
    __global__ void child(int *out, int count) {
        int tid = blockIdx.x * blockDim.x + threadIdx.x;
        if (tid < count) {
            atomicAdd(&out[0], 1);
        }
    }
    __global__ void parent(int *sizes, int *out, int n) {
        int t = blockIdx.x * blockDim.x + threadIdx.x;
        if (t < n) {
            int c = sizes[t];
            if (c > 0) {
                child<<<ceil((float)c / 32), 32>>>(out, c);
            }
        }
    }
    """

    def test_exact_extraction_and_equivalence(self):
        result = transform(self.SRC, OptConfig(threshold=16))
        assert "int _threads = c;" in result.source

        module_ref = Module(self.SRC)
        module_opt = Module(result.program, result.meta)
        for module in (module_ref, module_opt):
            dev = Device(module)
            sizes = dev.upload(np.array([5, 40, 0, 17, 64]))
            out = dev.alloc("int", 1)
            dev.launch("parent", 1, 32, sizes, out, 5)
            dev.sync()
            assert out[0] == 5 + 40 + 17 + 64
