"""SP — Survey Propagation on random k-SAT (Lonestar-style).

Each variable pushes survey contributions to every clause it occurs in; the
nested parallelism per parent thread is the variable's occurrence count
(≈ k·m/n on random instances — *small*, which is why the paper finds SP on
RAND-3 performs poorly under CDP: all child grids have fewer than 32
threads). The grid dimension uses the ``ceil((float)N/b)`` Fig. 4(d) pattern
to exercise that branch of the thread-count analysis.
"""

import numpy as np

from ..datasets import random_ksat
from ..runtime.host import blocks
from .common import Benchmark, scaled

_CHILD = """
__global__ void sp_child(int *var_occ, int *occ_slot, float *eta,
                         float *new_eta, float *bias, int var, int start,
                         int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int c = var_occ[start + tid];
        int slot = occ_slot[start + tid];
        float e = eta[c];
        float contribution = (1.0f - e) * (1.0f + 0.5f * bias[var])
                             / (2.0f + (float)slot);
        atomicAdd(&new_eta[c], contribution);
    }
}
"""

_CDP_PARENT = """
__global__ void sp_kernel(int *var_row, int *var_occ, int *occ_slot,
                          float *eta, float *new_eta, float *bias,
                          int nvars) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    if (x < nvars) {
        int start = var_row[x];
        int degree = var_row[x + 1] - start;
        if (degree > 0) {
            sp_child<<<ceil((float)degree / %(cb)d), %(cb)d>>>(
                var_occ, occ_slot, eta, new_eta, bias, x, start, degree);
        }
    }
}
"""

_NOCDP = """
__global__ void sp_kernel(int *var_row, int *var_occ, int *occ_slot,
                          float *eta, float *new_eta, float *bias,
                          int nvars) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    if (x < nvars) {
        int start = var_row[x];
        int end = var_row[x + 1];
        for (int i = start; i < end; ++i) {
            int c = var_occ[i];
            int slot = occ_slot[i];
            float e = eta[c];
            float contribution = (1.0f - e) * (1.0f + 0.5f * bias[x])
                                 / (2.0f + (float)slot);
            atomicAdd(&new_eta[c], contribution);
        }
    }
}
"""


class SPBenchmark(Benchmark):
    name = "SP"
    dataset_names = ("RAND-3", "5-SAT")
    child_block = 32
    iterations = 3

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "RAND-3":
            return random_ksat(num_vars=scaled(800, scale, 60),
                               num_clauses=scaled(3360, scale, 250), k=3,
                               name="RAND-3")
        if dataset_name == "5-SAT":
            # Higher clause width and density: variable occurrence lists are
            # several times longer than RAND-3's, like the 5-SAT instance.
            return random_ksat(num_vars=scaled(500, scale, 40),
                               num_clauses=scaled(2400, scale, 200), k=5,
                               name="5-SAT", seed=9)
        raise KeyError(dataset_name)

    def drive(self, device, instance):
        nvars = instance.num_vars
        nclauses = instance.num_clauses
        var_row = device.upload(instance.var_row)
        var_occ = device.upload(instance.var_occ)
        occ_slot = device.upload(instance.var_occ_slot)
        rng = np.random.default_rng(13)
        eta = device.upload(rng.random(nclauses) * 0.5)
        new_eta = device.alloc("float", nclauses)
        bias = device.upload(rng.random(nvars) - 0.5)

        for _ in range(self.iterations):
            new_eta.array[:] = 0.0
            device.launch("sp_kernel", blocks(nvars, 256), 256,
                          var_row, var_occ, occ_slot, eta, new_eta, bias,
                          nvars)
            device.sync()
            eta, new_eta = new_eta, eta
        return {"eta": eta.to_numpy()}
