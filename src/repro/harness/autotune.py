"""Practical tuning, after Sec. VIII-C.

The paper observes that exhaustive search is unnecessary in practice:

1. the best threshold is typically the one that still admits a bounded
   number of dynamic launches (6,000–8,000 on the paper's datasets — a
   fixed *fraction* of the original launches at our scaled sizes);
2. performance is insensitive to the coarsening factor once it is large
   enough (> 8);
3. warp granularity is never favorable;

so "users can typically find a combination of parameters that is very close
to the best with less than ten runs". :func:`quick_tune` implements exactly
that recipe; :func:`hill_climb` is a budgeted coordinate-descent refinement
for users who can afford a few more runs (the paper points at off-the-shelf
autotuners like OpenTuner for this role).
"""

from dataclasses import dataclass, field

from .runner import child_launch_sizes, run_variant
from .tuning import FULL_THRESHOLDS
from .variants import TuningParams, uses


def predict_threshold(bench, data, keep_fraction=0.25, device_config=None):
    """The Sec. VIII-C threshold rule: pick the smallest power-of-two
    threshold that still admits about *keep_fraction* of the original
    dynamic launches (the scaled analogue of "6,000-8,000 launches")."""
    sizes = sorted(child_launch_sizes(bench, data,
                                      device_config=device_config))
    if not sizes:
        return 1
    target = max(1, int(len(sizes) * keep_fraction))
    for threshold in FULL_THRESHOLDS:
        admitted = len(sizes) - _count_below(sizes, threshold)
        if admitted <= target:
            return threshold
    return FULL_THRESHOLDS[-1]


def _count_below(sorted_sizes, threshold):
    lo, hi = 0, len(sorted_sizes)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_sizes[mid] < threshold:
            lo = mid + 1
        else:
            hi = mid
    return lo


@dataclass
class QuickTuneResult:
    best: TuningParams
    best_time: int
    runs: int
    evaluated: list = field(default_factory=list)


def quick_tune(bench, data, label="CDP+T+C+A", device_config=None,
               keep_fraction=0.25, executor=None, scale=None):
    """The paper's under-ten-runs recipe.

    Fixes the coarsening factor at 8 (observation 2), predicts the threshold
    from the launch-size distribution (observation 1), and tries the
    non-warp granularities (observation 3) around the predicted threshold.

    :param keep_fraction: passed to :func:`predict_threshold`.
    :param executor: optional
        :class:`~repro.harness.sweep.SweepExecutor`; with the dataset
        *scale* the candidate grid runs through the sweep engine
        (parallel, cacheable, shardable) instead of serially. Point
        failures raise :class:`~repro.harness.sweep.SweepPointError`.
    :returns: a :class:`QuickTuneResult` (best params, best time, run
        count, and every point evaluated).
    """
    threshold = predict_threshold(bench, data, keep_fraction,
                                  device_config=device_config) \
        if uses(label, "T") else None
    cfactor = 8 if uses(label, "C") else None
    granularities = ("block", "multiblock", "grid") if uses(label, "A") \
        else (None,)
    thresholds = [threshold]
    if threshold is not None and threshold > 1:
        thresholds.append(max(1, threshold // 4))

    grid = [TuningParams(thr, cfactor, gran, group_blocks=8)
            for gran in granularities for thr in thresholds]
    times = _evaluate_grid(bench, data, label, grid, device_config,
                           executor, scale)
    best = None
    best_time = None
    evaluated = []
    for params, total_time in zip(grid, times):
        evaluated.append((params, total_time))
        if best_time is None or total_time < best_time:
            best, best_time = params, total_time
    return QuickTuneResult(best, best_time, len(evaluated), evaluated)


def _evaluate_grid(bench, data, label, grid, device_config, executor, scale):
    """Total times for *grid*, via the sweep engine when one is supplied."""
    if executor is not None and scale is not None:
        from .sweep import SweepPoint
        from ..sim.config import DeviceConfig
        device_config = device_config or DeviceConfig()
        dataset_name = getattr(data, "name", "?")
        points = [SweepPoint(bench.name, dataset_name, label, params,
                             device_config, scale) for params in grid]
        # Tuners cannot represent failed points: force failures to raise.
        return [result.total_time
                for result in executor.run(points, on_error="raise")]
    return [run_variant(bench, data, label, params, device_config).total_time
            for params in grid]


def hill_climb(bench, data, label="CDP+T+C+A", start=None, budget=24,
               device_config=None, executor=None, scale=None):
    """Coordinate-descent refinement from a starting point.

    Moves one parameter at a time to its neighboring value (threshold and
    coarsening factor by powers of two; granularity across the non-warp
    options) and keeps improvements, until the run budget is exhausted or a
    local optimum is reached.

    :param start: starting :class:`~repro.harness.variants.TuningParams`
        (default: :func:`quick_tune`'s best).
    :param budget: maximum distinct parameter points to evaluate.
    :param executor: optional
        :class:`~repro.harness.sweep.SweepExecutor`; with *scale* it
        makes each evaluation cacheable across invocations. The search
        itself stays sequential because each step depends on the
        previous one.
    :returns: a :class:`QuickTuneResult`; ``evaluated`` is sorted
        best-first.
    """
    if start is None:
        start = quick_tune(bench, data, label, device_config=device_config,
                           executor=executor, scale=scale).best
    seen = {}

    def evaluate(params):
        if params in seen:
            return seen[params]
        total_time, = _evaluate_grid(bench, data, label, [params],
                                     device_config, executor, scale)
        seen[params] = total_time
        return total_time

    current = start
    current_time = evaluate(current)
    improved = True
    while improved and len(seen) < budget:
        improved = False
        for neighbor in _neighbors(current, label):
            if len(seen) >= budget:
                break
            time = evaluate(neighbor)
            if time < current_time:
                current, current_time = neighbor, time
                improved = True
    return QuickTuneResult(current, current_time, len(seen),
                           sorted(seen.items(),
                                  key=lambda item: item[1]))


def _neighbors(params, label):
    neighbors = []
    if uses(label, "T") and params.threshold is not None:
        for factor in (2, 0.5):
            value = max(1, int(params.threshold * factor))
            if value != params.threshold:
                neighbors.append(
                    TuningParams(value, params.coarsen_factor,
                                 params.granularity, params.group_blocks))
    if uses(label, "C") and params.coarsen_factor is not None:
        for factor in (2, 0.5):
            value = max(1, int(params.coarsen_factor * factor))
            if value != params.coarsen_factor:
                neighbors.append(
                    TuningParams(params.threshold, value,
                                 params.granularity, params.group_blocks))
    if uses(label, "A") and params.granularity is not None:
        for gran in ("block", "multiblock", "grid"):
            if gran != params.granularity:
                neighbors.append(
                    TuningParams(params.threshold, params.coarsen_factor,
                                 gran, params.group_blocks))
        if params.granularity == "multiblock":
            for group in (params.group_blocks * 2,
                          max(2, params.group_blocks // 2)):
                if group != params.group_blocks:
                    neighbors.append(
                        TuningParams(params.threshold,
                                     params.coarsen_factor,
                                     "multiblock", group))
    return neighbors
