"""Runtime value types for the engine: device pointers and ``dim3``."""

import numpy as np

from ..errors import RuntimeLaunchError


class Dim3:
    """Mutable CUDA ``dim3`` with C-like value semantics on assignment."""

    __slots__ = ("x", "y", "z")

    def __init__(self, x=1, y=1, z=1):
        self.x = int(x)
        self.y = int(y)
        self.z = int(z)

    @classmethod
    def of(cls, value):
        """Copy-convert: ints become (n,1,1); Dim3 instances are copied."""
        if isinstance(value, Dim3):
            return cls(value.x, value.y, value.z)
        return cls(int(value))

    @property
    def total(self):
        return self.x * self.y * self.z

    def __eq__(self, other):
        if isinstance(other, Dim3):
            return (self.x, self.y, self.z) == (other.x, other.y, other.z)
        return NotImplemented

    def __hash__(self):
        return hash((self.x, self.y, self.z))

    def __repr__(self):
        return "Dim3(%d, %d, %d)" % (self.x, self.y, self.z)


class Ptr:
    """A typed view into device memory: a numpy array plus an offset.

    Pointer arithmetic (``p + k``) produces a new view; indexing reads and
    writes through the view. Object-dtype arrays hold pointer- or
    dim3-valued elements (used by the aggregation buffers).
    """

    __slots__ = ("array", "offset")

    def __init__(self, array, offset=0):
        self.array = array
        self.offset = offset

    def __getitem__(self, index):
        return self.array[self.offset + index]

    def __setitem__(self, index, value):
        self.array[self.offset + index] = value

    def __add__(self, other):
        return Ptr(self.array, self.offset + int(other))

    def __len__(self):
        return len(self.array) - self.offset

    def fill(self, value):
        self.array[self.offset:] = value

    def to_numpy(self):
        """A copy of the viewed region as a numpy array (host readback)."""
        return np.array(self.array[self.offset:])

    def __repr__(self):
        return "Ptr(dtype=%s, len=%d, off=%d)" % (
            self.array.dtype, len(self.array), self.offset)


_DTYPES = {
    "int": np.int64,
    "unsigned": np.int64,
    "unsigned int": np.int64,
    "long": np.int64,
    "unsigned long": np.int64,
    "short": np.int64,
    "char": np.int64,
    "bool": np.int64,
    "float": np.float64,
    "double": np.float64,
}


def alloc_for_type(element_type, count):
    """Allocate device memory for *count* elements of a miniCUDA type.

    *element_type* is the type of one element: pointer and ``dim3`` elements
    get object arrays (they store Ptr / Dim3 values); scalars get numeric
    numpy arrays.
    """
    count = int(count)
    if element_type.pointers >= 1 or element_type.name == "dim3":
        return Ptr(np.empty(count, dtype=object))
    name = element_type.name
    if name not in _DTYPES:
        raise RuntimeLaunchError("cannot allocate elements of type %r" % name)
    return Ptr(np.zeros(count, dtype=_DTYPES[name]))
